// Command genax is the read-alignment CLI over the GenAx pipeline model:
//
//	genax simulate -genome 200000 -coverage 5 -error 0.02 -out ./data
//	genax index    -ref ./data/ref.fasta
//	genax align    -ref ./data/ref.fasta -reads ./data/reads.fastq
//	genax eval     -aln aln.tsv -truth ./data/truth.tsv
//
// index writes a versioned, checksummed cache of the per-segment tables
// next to the reference (see internal/indexio); align auto-loads it when
// present, so repeated runs skip the table rebuild.
//
// align writes SAM-like records (QNAME FLAG RNAME POS MAPQ CIGAR AS:i:score)
// to stdout.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/extend"
	"genax/internal/indexio"
	"genax/internal/seed"
	"genax/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "index":
		err = cmdIndex(os.Args[2:])
	case "align":
		err = cmdAlign(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: genax {simulate|index|align|eval} [flags]")
	os.Exit(2)
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	genome := fs.Int("genome", 200_000, "reference length (bases)")
	coverage := fs.Float64("coverage", 5, "read coverage")
	errRate := fs.Float64("error", 0.02, "per-base sequencing error rate")
	readLen := fs.Int("readlen", 101, "read length")
	seed := fs.Int64("seed", 1, "RNG seed")
	out := fs.String("out", ".", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	wl := sim.NewWorkload(*seed, *genome, sim.DefaultVariantProfile(),
		sim.ReadProfile{Length: *readLen, Coverage: *coverage, ErrorRate: *errRate, ReverseFraction: 0.5})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	refPath := filepath.Join(*out, "ref.fasta")
	f, err := os.Create(refPath)
	if err != nil {
		return err
	}
	if err := dna.WriteFasta(f, []dna.FastaRecord{{Name: "synthetic", Seq: wl.Ref}}, 0); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	readsPath := filepath.Join(*out, "reads.fastq")
	g, err := os.Create(readsPath)
	if err != nil {
		return err
	}
	recs := make([]dna.FastqRecord, len(wl.Reads))
	truth := make([]string, len(wl.Reads))
	for i, rd := range wl.Reads {
		recs[i] = dna.FastqRecord{Name: rd.ID, Seq: rd.Seq}
		strand := "+"
		if rd.Reverse {
			strand = "-"
		}
		truth[i] = fmt.Sprintf("%s\t%d\t%s\t%d", rd.ID, rd.TruePos, strand, rd.Errors)
	}
	if err := dna.WriteFastq(g, recs); err != nil {
		_ = g.Close() // the write error is the one worth reporting
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	truthPath := filepath.Join(*out, "truth.tsv")
	t, err := os.Create(truthPath)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(t)
	// bufio errors are sticky; the checked Flush below surfaces them.
	_, _ = fmt.Fprintln(bw, "#read\ttrue_pos\tstrand\terrors")
	for _, line := range truth {
		_, _ = fmt.Fprintln(bw, line)
	}
	if err := bw.Flush(); err != nil {
		_ = t.Close()
		return err
	}
	if err := t.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bp), %s (%d reads), %s\n", refPath, len(wl.Ref), readsPath, len(wl.Reads), truthPath)
	return nil
}

func loadRef(path string) (dna.Seq, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	recs, err := dna.ReadFasta(f, dna.FastaOptions{ResolveN: rand.New(rand.NewSource(1))})
	if err != nil {
		return nil, "", err
	}
	// Concatenate contigs; alignment positions are reported against the
	// concatenation (single synthetic contigs in practice).
	var ref dna.Seq
	for _, r := range recs {
		ref = append(ref, r.Seq...)
	}
	return ref, recs[0].Name, nil
}

func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	refPath := fs.String("ref", "", "reference FASTA")
	kmer := fs.Int("kmer", 12, "k-mer length")
	segLen := fs.Int("segment", 1<<20, "segment length (bases)")
	shards := fs.Int("shards", 0, "partition the cache into N shard groups for bounded-residency streaming (0 = one group)")
	verify := fs.Bool("verify", false, "check the cache file (checksums, geometry, structure) and exit without building")
	out := fs.String("out", "auto",
		`index cache output: "auto" writes the keyed cache file next to -ref (the one align auto-loads), "" skips writing, anything else is an explicit path`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" {
		return fmt.Errorf("index: -ref is required")
	}
	ref, _, err := loadRef(*refPath)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.KmerLen = *kmer
	cfg.SegmentLen = *segLen
	path := *out
	if path == "auto" {
		path, err = indexio.CachePath(filepath.Dir(*refPath), ref, cfg.KmerLen, cfg.SegmentLen, cfg.Overlap)
		if err != nil {
			return err
		}
	}
	if *verify {
		if path == "" {
			return fmt.Errorf("index: -verify needs a cache path (-out auto or explicit)")
		}
		if reason := indexio.Probe(path, ref, cfg.KmerLen, cfg.SegmentLen, cfg.Overlap); reason != "" {
			return fmt.Errorf("index: cache %s unusable: %s", path, reason)
		}
		// Probe proved the header matches; load fully so every structural
		// invariant (and the whole-file CRC) is exercised.
		sx, err := indexio.ReadFile(path, ref)
		if err != nil {
			return fmt.Errorf("index: cache %s failed verification: %w", path, err)
		}
		v, err := indexio.FileVersion(path)
		if err != nil {
			return err
		}
		fmt.Printf("index cache %s OK (v%d, %d segments, hash %016x)\n", path, v, sx.NumSegments(), sx.Hash())
		return nil
	}
	// Probe before building: a cache that already matches the reference,
	// geometry, and requested shard partition makes the rebuild pure waste;
	// a present-but-unusable one gets its staleness reason printed instead
	// of a silent rebuild.
	if path != "" {
		reason := indexio.Probe(path, ref, cfg.KmerLen, cfg.SegmentLen, cfg.Overlap)
		if reason == "" {
			if v, verr := indexio.FileVersion(path); verr != nil {
				reason = verr.Error()
			} else if v != indexio.Version {
				reason = fmt.Sprintf("format version %d (current %d)", v, indexio.Version)
			} else if m, merr := indexio.OpenMapped(path); merr != nil {
				reason = merr.Error()
			} else {
				numSegs := len(m.Index().Samples)
				wantGS := indexio.GroupSizeForShards(numSegs, *shards)
				haveGS := m.ShardGroupSize()
				_ = m.Close()
				if numSegs > 0 && haveGS != wantGS {
					reason = fmt.Sprintf("shard partition mismatch (cache %d segments/group, want %d)", haveGS, wantGS)
				} else {
					fmt.Printf("index cache %s up to date, skipping rebuild\n", path)
					return nil
				}
			}
		}
		if reason != "" && reason != "no cache file" {
			fmt.Printf("rebuilding index cache %s: %s\n", path, reason)
		}
	}
	aligner, err := core.New(ref, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("reference: %d bp; segments: %d x %d bp (overlap %d); k-mer: %d\n",
		len(ref), aligner.NumSegments(), cfg.SegmentLen, cfg.Overlap, cfg.KmerLen)
	if path == "" {
		return nil
	}
	if err := indexio.WriteFileShards(path, aligner.Index(), ref, indexio.GroupSizeForShards(aligner.NumSegments(), *shards)); err != nil {
		return err
	}
	fmt.Printf("wrote index cache %s (hash %016x)\n", path, aligner.Index().Hash())
	return nil
}

// loadIndexCache resolves the align -index flag: "" disables the cache,
// "auto" probes the keyed cache file next to the reference (missing or
// stale files fall back to an in-process build with a note), and any other
// value is an explicit path whose load failures are fatal — the user asked
// for that file specifically.
func loadIndexCache(mode, refPath string, ref dna.Seq, cfg core.Config) (*seed.SegmentedIndex, error) {
	switch mode {
	case "":
		return nil, nil
	case "auto":
		path, err := indexio.CachePath(filepath.Dir(refPath), ref, cfg.KmerLen, cfg.SegmentLen, cfg.Overlap)
		if err != nil {
			return nil, err
		}
		sx, err := indexio.ReadFile(path, ref)
		if err != nil {
			if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "genax: ignoring index cache %s: %v\n", path, err)
			}
			return nil, nil
		}
		fmt.Fprintf(os.Stderr, "genax: loaded index cache %s\n", path)
		return sx, nil
	default:
		return indexio.ReadFile(mode, ref)
	}
}

// openMappedIndex resolves the -index flag for the -mmap path. Unlike the
// heap loader there is no silent fallback: the user explicitly asked for
// the mapped cache, so a missing or mismatched file is fatal with a
// pointer at `genax index`.
func openMappedIndex(mode, refPath string, ref dna.Seq, cfg core.Config) (*indexio.Mapped, error) {
	path := mode
	switch mode {
	case "":
		return nil, fmt.Errorf("align: -mmap needs an index cache (-index auto or an explicit path)")
	case "auto":
		var err error
		path, err = indexio.CachePath(filepath.Dir(refPath), ref, cfg.KmerLen, cfg.SegmentLen, cfg.Overlap)
		if err != nil {
			return nil, err
		}
	}
	m, err := indexio.OpenMapped(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("align: no index cache at %s (run genax index first)", path)
		}
		return nil, fmt.Errorf("align: cannot map index cache %s: %w", path, err)
	}
	// The mapping is internally consistent; now pin it to the inputs in
	// hand, exactly like the heap loader's hash and geometry checks.
	if len(ref) != len(m.Ref()) || m.RefHash() != indexio.RefHash(ref) {
		_ = m.Close()
		return nil, fmt.Errorf("align: index cache %s was built from a different reference", path)
	}
	if m.K() != cfg.KmerLen || m.SegLen() != cfg.SegmentLen || m.Overlap() != cfg.Overlap {
		_ = m.Close()
		return nil, fmt.Errorf("align: index cache %s geometry (k=%d seg=%d overlap=%d) does not match flags (k=%d seg=%d overlap=%d)",
			path, m.K(), m.SegLen(), m.Overlap(), cfg.KmerLen, cfg.SegmentLen, cfg.Overlap)
	}
	fmt.Fprintf(os.Stderr, "genax: mapped index cache %s (%d MiB, %d shard groups)\n",
		path, m.SizeBytes()>>20, m.NumShardGroups())
	return m, nil
}

func cmdAlign(args []string) error {
	fs := flag.NewFlagSet("align", flag.ExitOnError)
	refPath := fs.String("ref", "", "reference FASTA")
	readsPath := fs.String("reads", "", "reads FASTQ")
	kmer := fs.Int("kmer", 12, "k-mer length")
	segLen := fs.Int("segment", 1<<20, "segment length (bases)")
	k := fs.Int("k", 40, "SillaX edit bound")
	engine := fs.String("engine", "bitsilla", "extension engine: bitsilla, sillax, banded, genasm, or cascade")
	stats := fs.Bool("stats", false, "print pipeline statistics to stderr")
	stream := fs.Bool("stream", false, "align via the streaming pipeline (bounded memory, results emitted as windows complete)")
	indexFlag := fs.String("index", "auto",
		`index cache: "auto" loads the genax-index cache next to -ref when present, "" always rebuilds, anything else is an explicit cache path`)
	mmapFlag := fs.Bool("mmap", false, "open the index cache in place (zero-copy mmap) instead of deserializing it; requires a v2 cache written by genax index")
	shardsFlag := fs.Int("shards", 0, "with -mmap, bound residency to N shard groups at a time (0 = unbounded); the cache must have been written with a shard partition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refPath == "" || *readsPath == "" {
		return fmt.Errorf("align: -ref and -reads are required")
	}
	if *shardsFlag > 0 && !*mmapFlag {
		return fmt.Errorf("align: -shards requires -mmap (a heap index has no residency to bound)")
	}
	ref, refName, err := loadRef(*refPath)
	if err != nil {
		return err
	}
	rf, err := os.Open(*readsPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	recs, err := dna.ReadFastq(rf, dna.FastaOptions{ResolveN: rand.New(rand.NewSource(2))})
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.KmerLen = *kmer
	cfg.SegmentLen = *segLen
	cfg.K = *k
	cfg.Engine = core.Engine(*engine)
	// The reference the aligner runs against: the FASTA by default, the
	// cache's own mapped bytes under -mmap (out-of-core operation — the
	// FASTA copy is released to the GC once it has validated the mapping).
	alignRef := ref
	var res *indexio.ShardResidency
	if *mmapFlag {
		m, err := openMappedIndex(*indexFlag, *refPath, ref, cfg)
		if err != nil {
			return err
		}
		// Unmap only after the pipeline has fully drained (deferred past
		// the AlignBatch/AlignStream returns below) — every table and the
		// reference itself are views into this mapping.
		defer m.Close()
		cfg.Index = m.Index()
		alignRef = m.Ref()
		ref = nil
		if *shardsFlag > 0 {
			if m.NumShardGroups() <= 1 {
				fmt.Fprintf(os.Stderr, "genax: -shards %d ignored: cache has a single shard group (rebuild with genax index -shards)\n", *shardsFlag)
			} else {
				res = indexio.NewShardResidency(m, *shardsFlag)
				cfg.Residency = res
			}
		}
	} else {
		cfg.Index, err = loadIndexCache(*indexFlag, *refPath, ref, cfg)
		if err != nil {
			return err
		}
	}
	aligner, err := core.New(alignRef, cfg)
	if err != nil {
		return err
	}
	for _, w := range aligner.Warnings() {
		fmt.Fprintf(os.Stderr, "genax: warning: %s\n", w)
	}
	reads := make([]dna.Seq, len(recs))
	for i, r := range recs {
		reads[i] = r.Seq
	}
	out := bufio.NewWriter(os.Stdout)
	// bufio errors are sticky; the checked Flush below surfaces them.
	var st *core.Stats
	if *stream {
		// The streaming path holds only a bounded window of reads in
		// flight; records are written as each window completes, in input
		// order, and are byte-identical to the batch path's output.
		in := make(chan dna.Seq)
		results, streamStats := aligner.AlignStream(context.Background(), in)
		go func() {
			for _, rd := range reads {
				in <- rd
			}
			close(in)
		}()
		i := 0
		for rr := range results {
			writeRecord(out, recs[i].Name, refName, rr)
			i++
		}
		st = streamStats
	} else {
		results, batchStats := aligner.AlignBatch(reads)
		for i, rr := range results {
			writeRecord(out, recs[i].Name, refName, rr)
		}
		st = &batchStats
	}
	if err := out.Flush(); err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "reads=%d aligned=%d exact=%d segments=%d extensions=%d extCycles=%d reruns=%d\n",
			st.Reads, st.Aligned, st.ExactReads, st.Segments, st.Extensions, st.ExtensionCycles, st.ReRuns)
		if st.ChainGroups > 0 {
			fmt.Fprintf(os.Stderr, "anchor chaining: groups=%d anchors=%d kept=%d\n",
				st.ChainGroups, st.ChainAnchors, st.ChainKept)
		}
		if st.EngineFallbacks > 0 {
			fmt.Fprintf(os.Stderr, "cycle-model fallbacks=%d (degraded engine; see warnings)\n",
				st.EngineFallbacks)
		}
		if st.Routing.Total() > 0 {
			fmt.Fprintf(os.Stderr, "cascade routing: total=%d certified=%d", st.Routing.Total(), st.Routing.Certified())
			for l := extend.Leg(0); l < extend.NumLegs; l++ {
				s := st.Routing.Legs[l]
				fmt.Fprintf(os.Stderr, " %s=%d/%d", l, s.Accepted, s.Routed)
			}
			fmt.Fprintln(os.Stderr)
		}
		if res != nil {
			fmt.Fprintln(os.Stderr, res.String())
		}
	}
	return nil
}

// writeRecord emits one SAM-like record for an alignment result.
func writeRecord(out *bufio.Writer, qname, refName string, rr core.ReadResult) {
	if !rr.Aligned {
		_, _ = fmt.Fprintf(out, "%s\t4\t*\t0\t0\t*\tAS:i:0\n", qname)
		return
	}
	flagv := 0
	if rr.Result.Reverse {
		flagv = 16
	}
	_, _ = fmt.Fprintf(out, "%s\t%d\t%s\t%d\t60\t%s\tAS:i:%d\n",
		qname, flagv, refName, rr.Result.RefPos+1, rr.Result.Cigar, rr.Result.Score)
}

// cmdEval scores an alignment file produced by `genax align` against the
// truth table produced by `genax simulate`, reporting the fraction of
// reads aligned, mapped near their true position, and on the right strand.
func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	alnPath := fs.String("aln", "", "alignment file (output of genax align)")
	truthPath := fs.String("truth", "", "truth table (truth.tsv from genax simulate)")
	tol := fs.Int("tol", 12, "position tolerance (bases)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *alnPath == "" || *truthPath == "" {
		return fmt.Errorf("eval: -aln and -truth are required")
	}
	truth := map[string]struct {
		pos    int
		strand string
	}{}
	tf, err := os.Open(*truthPath)
	if err != nil {
		return err
	}
	defer tf.Close()
	sc := bufio.NewScanner(tf)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) < 3 {
			return fmt.Errorf("eval: malformed truth line %q", line)
		}
		pos, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("eval: bad position in %q: %v", line, err)
		}
		truth[f[0]] = struct {
			pos    int
			strand string
		}{pos, f[2]}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	af, err := os.Open(*alnPath)
	if err != nil {
		return err
	}
	defer af.Close()
	total, aligned, near, strandOK := 0, 0, 0, 0
	as := bufio.NewScanner(af)
	for as.Scan() {
		f := strings.Split(as.Text(), "\t")
		if len(f) < 6 {
			continue
		}
		tr, ok := truth[f[0]]
		if !ok {
			continue
		}
		total++
		if f[1] == "4" {
			continue
		}
		aligned++
		pos, err := strconv.Atoi(f[3])
		if err != nil {
			continue
		}
		d := pos - 1 - tr.pos
		if d < 0 {
			d = -d
		}
		if d <= *tol {
			near++
		}
		strand := "+"
		if f[1] == "16" {
			strand = "-"
		}
		if strand == tr.strand {
			strandOK++
		}
	}
	if err := as.Err(); err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("eval: no alignment records matched the truth table")
	}
	fmt.Printf("reads evaluated: %d\n", total)
	fmt.Printf("aligned:         %d (%.2f%%)\n", aligned, 100*float64(aligned)/float64(total))
	fmt.Printf("within %-3d bp:   %d (%.2f%% of aligned)\n", *tol, near, 100*float64(near)/float64(max(1, aligned)))
	fmt.Printf("strand correct:  %d (%.2f%% of aligned)\n", strandOK, 100*float64(strandOK)/float64(max(1, aligned)))
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
