// Command genaxd serves alignment over HTTP: many concurrent single-read
// requests are coalesced into pipeline batches per genome (the batching
// the GenAx lane pool is fast at), against a registry of mmap-backed index
// caches with LRU residency and warm preloading.
//
// Usage:
//
//	genaxd -listen :8844 -genome grch=ref/grch.fasta -genome ecoli=ref/ecoli.fasta
//
// Endpoints:
//
//	POST /align/{genome}   body: base string (ACGT...), response: JSON alignment
//	GET  /statsz           serve + pipeline counters
//	GET  /healthz          200 while serving, 503 while draining
//
// SIGINT/SIGTERM drains gracefully: new requests get 503, in-flight
// requests finish (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"genax/internal/core"
	"genax/internal/serve"
)

// genomeFlags collects repeated -genome name=path pairs.
type genomeFlags []serve.GenomeConfig

func (g *genomeFlags) String() string {
	names := make([]string, len(*g))
	for i, gc := range *g {
		names[i] = gc.Name
	}
	return strings.Join(names, ",")
}

func (g *genomeFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*g = append(*g, serve.GenomeConfig{Name: name, Fasta: path, Preload: true})
	return nil
}

func main() {
	var genomes genomeFlags
	flag.Var(&genomes, "genome", "serve a genome as name=ref.fasta (repeatable)")
	listen := flag.String("listen", ":8844", "listen address")
	kmer := flag.Int("kmer", 12, "index k-mer length")
	segLen := flag.Int("segment", 1<<20, "index segment length (bases)")
	overlap := flag.Int("overlap", 256, "index segment overlap (must cover readLen+K)")
	k := flag.Int("k", 40, "SillaX edit bound")
	engine := flag.String("engine", "bitsilla", "extension engine: bitsilla, sillax, banded, genasm, or cascade")
	minScore := flag.Int("minscore", 30, "reporting score floor")
	workers := flag.Int("workers", 0, "lane budget per batch (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "coalesced batch size bound")
	window := flag.Duration("coalesce-window", serve.DefaultCoalesceWindow,
		"max wait for a batch to fill (0 = per-request serving, no coalescing)")
	queueLimit := flag.Int("queue-limit", 0, "admission limit per genome (0 = 4x max-batch); beyond it requests get 429")
	maxResident := flag.Int("max-resident", serve.DefaultMaxResident, "genomes resident (mapped + aligner) at once; LRU beyond")
	loadConc := flag.Int("load-concurrency", 1, "concurrent index builds/loads on registry miss")
	cacheDir := flag.String("cache-dir", "", "index cache directory (default: next to each FASTA)")
	shards := flag.Int("shards", 0, "shard groups for rebuilt caches (0 = one group)")
	preload := flag.Bool("preload", true, "warm-load all genomes before serving")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	flag.Parse()

	if len(genomes) == 0 {
		fmt.Fprintln(os.Stderr, "genaxd: at least one -genome name=ref.fasta is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.KmerLen = *kmer
	cfg.SegmentLen = *segLen
	cfg.Overlap = *overlap
	cfg.K = *k
	cfg.Engine = core.Engine(*engine)
	cfg.MinScore = *minScore
	cfg.Workers = *workers

	srv, err := serve.New(serve.Config{
		Genomes:         genomes,
		Core:            cfg,
		CacheDir:        *cacheDir,
		MaxBatch:        *maxBatch,
		CoalesceWindow:  *window,
		QueueLimit:      *queueLimit,
		MaxResident:     *maxResident,
		LoadConcurrency: *loadConc,
		Shards:          *shards,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatalf("genaxd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *preload {
		log.Printf("genaxd: preloading %d genome(s)", len(genomes))
		t0 := time.Now()
		if err := srv.Preload(ctx, true); err != nil {
			log.Fatalf("genaxd: %v", err)
		}
		log.Printf("genaxd: preload done in %v", time.Since(t0).Round(time.Millisecond))
	}

	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("genaxd: serving %s on %s (coalesce window %v, max batch %d)",
		genomes.String(), *listen, *window, *maxBatch)

	select {
	case err := <-errc:
		log.Fatalf("genaxd: %v", err)
	case <-ctx.Done():
	}

	// Drain: reject new work, let admitted requests finish, then tear the
	// serve layer down (dispatchers stop, genomes unmap).
	log.Printf("genaxd: signal received, draining (timeout %v)", *drainTimeout)
	srv.StartDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("genaxd: shutdown: %v", err)
	}
	srv.Close()
	log.Printf("genaxd: drained, exiting")
}
