// Command genaxvet is the GenAx-specific static analysis suite: a
// multichecker over the analyzers in internal/lint that enforce, at
// compile time, the invariants the runtime tests only sample —
//
//	hotpath        //genax:hotpath functions contain no heap-allocating
//	               constructs (defer, closures, make/new, map/slice
//	               literals, fmt/strings calls, interface boxing)
//	determinism    the deterministic kernel packages (core, pipeline, seed,
//	               silla, sillax, extend, align, bitsilla, genasm) contain
//	               no map iteration, wall-clock reads, unseeded math/rand,
//	               or multi-channel selects
//	invariants     no silently dropped error results; exported kernel entry
//	               points bound-check their edit-distance / segment-index
//	               parameters
//	borrow         slices returned by //genax:borrowed functions never
//	               escape or mutate their owner's storage (no heap stores,
//	               goroutine/closure captures, appends, channel sends, or
//	               unannotated returns)
//	mergecomplete  Merge methods in kernel packages fold every field or
//	               mark it //genax:nomerge
//	stagecontract  internal/pipeline keeps channels bounded, goroutines
//	               WaitGroup-tracked or context-bounded, and pointer sends
//	               traceable to a credit acquire
//
// Usage:
//
//	go run ./cmd/genaxvet ./...
//	go run ./cmd/genaxvet -tests=false ./internal/seed/...
//	go run ./cmd/genaxvet -json ./... > findings.json
//
// Exit status is 1 when any diagnostic is reported, 2 on driver errors.
// With -json, findings are emitted as a JSON array of
// {file,line,col,analyzer,message} objects on stdout (empty array when
// clean) so CI can annotate. CI runs it as a required gate; see
// DESIGN.md ("Static analysis & enforced invariants") for the annotation
// contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"genax/internal/lint/analysis"
	"genax/internal/lint/borrow"
	"genax/internal/lint/determinism"
	"genax/internal/lint/hotpath"
	"genax/internal/lint/invariants"
	"genax/internal/lint/load"
	"genax/internal/lint/mergecomplete"
	"genax/internal/lint/stagecontract"
)

var analyzers = []*analysis.Analyzer{
	hotpath.Analyzer,
	determinism.Analyzer,
	invariants.Analyzer,
	borrow.Analyzer,
	mergecomplete.Analyzer,
	stagecontract.Analyzer,
}

func main() {
	tests := flag.Bool("tests", true, "also analyze test files")
	jsonOut := flag.Bool("json", false, "emit findings as JSON ({file,line,col,analyzer,message}) on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: genaxvet [-tests=false] [-json] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := &load.Config{Tests: *tests}
	pkgs, err := cfg.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genaxvet: %v\n", err)
		os.Exit(2)
	}

	// Pre-pass: register every //genax:borrowed annotation before any
	// package is analyzed, so the borrow analyzer resolves cross-package
	// calls (pipeline using seed.Lookup) regardless of analysis order.
	for _, pkg := range pkgs {
		borrow.Collect(pkg.Info, pkg.Files)
	}

	type finding struct {
		pos      token.Position
		message  string
		analyzer string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				// A test variant re-checks the non-test files the base
				// build already covered; only its _test.go findings are new.
				if pkg.TestVariant && !strings.HasSuffix(pos.Filename, "_test.go") {
					return
				}
				findings = append(findings, finding{pos: pos, message: d.Message, analyzer: a.Name})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "genaxvet: %s: %s: %v\n", pkg.ImportPath, a.Name, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.message < b.message
	})
	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}

	type jsonFinding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	seen := make(map[string]bool)
	jsonFindings := []jsonFinding{}
	n := 0
	for _, f := range findings {
		name := relName(f.pos.Filename)
		line := fmt.Sprintf("%s:%d:%d: %s (%s)", name, f.pos.Line, f.pos.Column, f.message, f.analyzer)
		if seen[line] {
			continue
		}
		seen[line] = true
		if *jsonOut {
			jsonFindings = append(jsonFindings, jsonFinding{
				File: name, Line: f.pos.Line, Col: f.pos.Column,
				Analyzer: f.analyzer, Message: f.message,
			})
		} else {
			fmt.Println(line)
		}
		n++
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonFindings); err != nil {
			fmt.Fprintf(os.Stderr, "genaxvet: %v\n", err)
			os.Exit(2)
		}
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "genaxvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
