// Command genaxvet is the GenAx-specific static analysis suite: a
// multichecker over the analyzers in internal/lint that enforce, at
// compile time, the invariants the runtime tests only sample —
//
//	hotpath      //genax:hotpath functions contain no heap-allocating
//	             constructs (defer, closures, make/new, map/slice
//	             literals, fmt/strings calls, interface boxing)
//	determinism  the deterministic kernel packages (core, pipeline, seed,
//	             silla, sillax, extend, align) contain no map iteration,
//	             wall-clock reads, unseeded math/rand, or multi-channel
//	             selects
//	invariants   no silently dropped error results; exported kernel entry
//	             points bound-check their edit-distance / segment-index
//	             parameters
//
// Usage:
//
//	go run ./cmd/genaxvet ./...
//	go run ./cmd/genaxvet -tests=false ./internal/seed/...
//
// Exit status is 1 when any diagnostic is reported, 2 on driver errors.
// CI runs it as a required gate; see DESIGN.md ("Static analysis &
// enforced invariants") for the annotation contract.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"genax/internal/lint/analysis"
	"genax/internal/lint/determinism"
	"genax/internal/lint/hotpath"
	"genax/internal/lint/invariants"
	"genax/internal/lint/load"
)

var analyzers = []*analysis.Analyzer{
	hotpath.Analyzer,
	determinism.Analyzer,
	invariants.Analyzer,
}

func main() {
	tests := flag.Bool("tests", true, "also analyze test files")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: genaxvet [-tests=false] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := &load.Config{Tests: *tests}
	pkgs, err := cfg.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genaxvet: %v\n", err)
		os.Exit(2)
	}

	type finding struct {
		pos      token.Position
		message  string
		analyzer string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				// A test variant re-checks the non-test files the base
				// build already covered; only its _test.go findings are new.
				if pkg.TestVariant && !strings.HasSuffix(pos.Filename, "_test.go") {
					return
				}
				findings = append(findings, finding{pos: pos, message: d.Message, analyzer: a.Name})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "genaxvet: %s: %s: %v\n", pkg.ImportPath, a.Name, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.message < b.message
	})
	cwd, _ := os.Getwd()
	seen := make(map[string]bool)
	n := 0
	for _, f := range findings {
		name := f.pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		line := fmt.Sprintf("%s:%d:%d: %s (%s)", name, f.pos.Line, f.pos.Column, f.message, f.analyzer)
		if seen[line] {
			continue
		}
		seen[line] = true
		fmt.Println(line)
		n++
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "genaxvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
