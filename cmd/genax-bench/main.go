// Command genax-bench regenerates the tables and figures of the paper's
// evaluation (§VIII). Each subcommand prints paper-vs-measured rows:
//
//	genax-bench fig12     SillaX per-PE area/power vs frequency
//	genax-bench fig13     traceback re-execution distribution
//	genax-bench fig14     seed-extension throughput comparison
//	genax-bench fig15     end-to-end throughput and power
//	genax-bench fig16     seeding optimization ablations
//	genax-bench table2    GenAx area breakdown
//	genax-bench validate  GenAx vs BWA-MEM-like concordance
//	genax-bench all       everything above
//
// Flags: -quick shrinks the workload; -genome/-coverage/-seed resize it;
// -engine selects the extension engine (bitsilla, sillax, banded, genasm,
// cascade); -compare-engines runs the workload through every engine,
// prints wall clock, extend-stage busy time, allocations, result-hash
// equality and the cascade's per-leg routing histogram, and writes the
// measurements to BENCH_extend.json; -compare-longread runs the kilobase
// long-read workload (K > 63, every extension on the multi-word wide
// datapath) through the cycle oracle, the degraded cycle-fallback
// bitsilla, the wide bitsilla and the cascade, writes BENCH_longread.json,
// and fails on any oracle hash mismatch or (full workload only) when the
// wide datapath's extend-stage speedup over the cycle fallback is below
// bench.SpeedupFloor; -cpuprofile/-memprofile
// write pprof profiles of the selected experiment (see EXPERIMENTS.md for
// the profiling workflow); -allocbudget N measures steady-state AlignBatch
// heap allocations per read after the experiment and exits non-zero when
// they exceed N; -stages prints the per-stage wall-clock and
// queue-occupancy breakdown of the staged pipeline (the Fig 11 seed/extend
// lane balance); -compare-index aligns the workload over one v2 index
// cache through the heap, zero-copy mapped, and sharded (bounded
// residency) backings and writes cold-start/peak-RSS/result-hash rows to
// BENCH_index.json; -mmap maps the -indexcache file instead of
// heap-loading it, and -shards partitions written caches into shard
// groups (bounding mapped residency to one group at a time).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"genax/internal/bench"
	"genax/internal/core"
)

func main() {
	os.Exit(run())
}

// run holds main's body so deferred profile writers execute before the
// process exits with a failure code (os.Exit in main would skip them).
func run() int {
	quick := flag.Bool("quick", false, "use a small workload for a fast smoke run")
	genome := flag.Int("genome", 0, "override synthetic genome length (bases)")
	coverage := flag.Float64("coverage", 0, "override read coverage")
	seed := flag.Int64("seed", 0, "override workload RNG seed")
	engine := flag.String("engine", "", "extension engine: bitsilla (default), sillax, banded, genasm, or cascade")
	compareEngines := flag.Bool("compare-engines", false,
		"run the workload through every extension engine, print the comparison, and write BENCH_extend.json")
	compareLongread := flag.Bool("compare-longread", false,
		"run the kilobase long-read workload (K > 63) through the cycle oracle, cycle-fallback bitsilla, wide bitsilla and cascade, print the comparison, and write BENCH_longread.json")
	compareSeed := flag.Bool("compare-seed", false,
		"run the workload through the per-probe and rolling seed paths plus serial/parallel index builds, print the comparison, and write BENCH_seed.json")
	compareIndex := flag.Bool("compare-index", false,
		"align the workload over one v2 index cache through the heap, mapped, and sharded backings, print cold-start/peak-RSS/result-hash rows, and write BENCH_index.json")
	compareServe := flag.Bool("compare-serve", false,
		"serve the workload over HTTP through per-request-session, pooled-AlignRead and coalesced modes, print capacity/latency/shedding rows, and write BENCH_serve.json")
	mmapIdx := flag.Bool("mmap", false,
		"with -indexcache, map the cache file zero-copy (indexio.OpenMapped) instead of heap-loading it; stale or v1 caches are rewritten in the v2 format first")
	shards := flag.Int("shards", 0,
		"shard groups for index caches: partitions files written by -indexcache/-compare-index and, with -mmap, bounds table residency to one group at a time (0 = one group; -compare-index defaults to 4)")
	workers := flag.Int("workers", 0,
		"worker count for the parallel index build measured by -compare-seed (0 = GOMAXPROCS); the recorded BENCH_seed.json speedup is labeled with this count")
	pairs := flag.Int("pairs", 2000, "extension pairs for fig14")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	allocbudget := flag.Float64("allocbudget", 0,
		"after the experiment, measure steady-state AlignBatch allocations per read and fail if above this budget (0 disables)")
	stages := flag.Bool("stages", false,
		"after the experiment, print the per-stage wall-clock and queue-occupancy breakdown (Fig 11 lane balance)")
	indexCache := flag.String("indexcache", "",
		"keep the segmented index in an on-disk cache under this directory: the first run builds and writes it, later runs load it instead of rebuilding (empty disables)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: genax-bench [flags] {fig12|fig13|fig14|fig15|fig16|table2|validate|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 && !((*compareEngines || *compareLongread || *compareSeed || *compareIndex || *compareServe) && flag.NArg() == 0) {
		flag.Usage()
		return 2
	}

	spec := bench.DefaultWorkload()
	if *quick {
		spec = bench.QuickWorkload()
	}
	if *genome > 0 {
		spec.GenomeLen = *genome
	}
	if *coverage > 0 {
		spec.Coverage = *coverage
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	spec.Engine = core.Engine(*engine)
	spec.IndexCacheDir = *indexCache
	spec.IndexWorkers = *workers
	spec.MmapIndex = *mmapIdx
	spec.Shards = *shards

	if *compareEngines {
		if code := runCompareEngines(spec); code != 0 {
			return code
		}
	}
	if *compareLongread {
		lr := bench.DefaultLongread()
		if *quick {
			lr = bench.QuickLongread()
		}
		if *seed != 0 {
			lr.Seed = *seed
		}
		if *genome > 0 {
			lr.GenomeLen = *genome
		}
		if *coverage > 0 {
			lr.Coverage = *coverage
		}
		if code := runCompareLongread(lr, *quick); code != 0 {
			return code
		}
	}
	if *compareSeed {
		if code := runCompareSeed(spec); code != 0 {
			return code
		}
	}
	if *compareIndex {
		n := *shards
		if n <= 0 {
			n = 4
		}
		if code := runCompareIndex(spec, n); code != 0 {
			return code
		}
	}
	if *compareServe {
		if code := runCompareServe(*quick); code != 0 {
			return code
		}
	}
	if flag.NArg() == 0 {
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "genax-bench: %v\n", err)
			return 1
		}
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "genax-bench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "genax-bench: %v\n", err)
				return
			}
			runtime.GC() // flush dead objects so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "genax-bench: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "genax-bench: %v\n", err)
			}
		}()
	}

	experiments := map[string]func(){
		"fig12":    func() { fmt.Println(bench.Fig12()) },
		"fig13":    func() { fmt.Println(bench.Fig13(spec)) },
		"fig14":    func() { fmt.Println(bench.Fig14(spec, *pairs)) },
		"fig15":    func() { fmt.Println(bench.Fig15(spec)) },
		"fig16":    func() { fmt.Println(bench.Fig16(spec)) },
		"table2":   func() { fmt.Println(bench.Table2String()) },
		"validate": func() { fmt.Println(bench.Validate(spec)) },
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, k := range []string{"fig12", "table2", "fig13", "fig14", "fig16", "fig15", "validate"} {
			fmt.Printf("==== %s ====\n", k)
			experiments[k]()
		}
		return runChecks(spec, *allocbudget, *stages)
	}
	f, ok := experiments[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "genax-bench: unknown experiment %q\n", name)
		flag.Usage()
		return 2
	}
	f()
	return runChecks(spec, *allocbudget, *stages)
}

// runCompareEngines measures every extension engine on the workload,
// prints the comparison, writes BENCH_extend.json, and fails when any
// identity-claiming engine (bitsilla, genasm, cascade) diverges from the
// cycle-level oracle.
func runCompareEngines(spec bench.WorkloadSpec) int {
	cmp, err := bench.CompareEngines(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-engines: %v\n", err)
		return 1
	}
	fmt.Println(cmp)
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-engines: %v\n", err)
		return 1
	}
	if err := os.WriteFile("BENCH_extend.json", append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-engines: %v\n", err)
		return 1
	}
	fmt.Println("wrote BENCH_extend.json")
	if !cmp.OracleMatch {
		fmt.Fprintf(os.Stderr, "genax-bench: engine results diverge from the oracle\n")
		return 1
	}
	return 0
}

// runCompareLongread measures the long-read workload through every
// identity-claiming engine configuration, prints the comparison, writes
// BENCH_longread.json, and fails when any configuration's results diverge
// from the cycle-level oracle — or, on the full workload, when the wide
// multi-word datapath's extend-stage advantage over the cycle fallback is
// below the acceptance floor. The -quick variant gates hash identity only:
// its workload is too small for a stable speedup measurement.
func runCompareLongread(spec bench.LongreadSpec, quick bool) int {
	cmp, err := bench.CompareLongread(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-longread: %v\n", err)
		return 1
	}
	fmt.Println(cmp)
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-longread: %v\n", err)
		return 1
	}
	if err := os.WriteFile("BENCH_longread.json", append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-longread: %v\n", err)
		return 1
	}
	fmt.Println("wrote BENCH_longread.json")
	if !cmp.OracleMatch {
		fmt.Fprintf(os.Stderr, "genax-bench: long-read engine results diverge from the oracle\n")
		return 1
	}
	if !quick && cmp.WideVsCycle < bench.SpeedupFloor {
		fmt.Fprintf(os.Stderr, "genax-bench: wide datapath speedup %.2fx is below the %.0fx floor\n",
			cmp.WideVsCycle, bench.SpeedupFloor)
		return 1
	}
	return 0
}

// runCompareSeed measures the per-probe and rolling seed paths plus the
// serial/parallel index builds, prints the comparison, writes
// BENCH_seed.json, and fails when the rolling path's results or work
// counters diverge from the per-probe baseline — or when the parallel
// index build is not byte-identical to the serial one.
func runCompareSeed(spec bench.WorkloadSpec) int {
	cmp, err := bench.CompareSeed(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-seed: %v\n", err)
		return 1
	}
	fmt.Println(cmp)
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-seed: %v\n", err)
		return 1
	}
	if err := os.WriteFile("BENCH_seed.json", append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-seed: %v\n", err)
		return 1
	}
	fmt.Println("wrote BENCH_seed.json")
	if !cmp.ResultMatch {
		fmt.Fprintf(os.Stderr, "genax-bench: rolling-scan results diverge from the per-probe baseline\n")
		return 1
	}
	if !cmp.IndexHashMatch {
		fmt.Fprintf(os.Stderr, "genax-bench: parallel index build diverges from the serial build\n")
		return 1
	}
	if !cmp.MappedMatch {
		fmt.Fprintf(os.Stderr, "genax-bench: mapped-index results diverge from the heap baseline\n")
		return 1
	}
	return 0
}

// runCompareIndex aligns the workload over a single v2 cache file through
// the heap, mapped, and sharded index backings, prints the comparison,
// writes BENCH_index.json, and fails when any backing's results diverge
// from the heap baseline or when the mapped cold start does not beat heap
// deserialization.
func runCompareIndex(spec bench.WorkloadSpec, shards int) int {
	cmp, err := bench.CompareIndex(spec, shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-index: %v\n", err)
		return 1
	}
	fmt.Println(cmp)
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-index: %v\n", err)
		return 1
	}
	if err := os.WriteFile("BENCH_index.json", append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-index: %v\n", err)
		return 1
	}
	fmt.Println("wrote BENCH_index.json")
	if !cmp.ResultMatch {
		fmt.Fprintf(os.Stderr, "genax-bench: mapped/sharded results diverge from the heap baseline\n")
		return 1
	}
	if !cmp.ColdStartGate {
		fmt.Fprintf(os.Stderr, "genax-bench: mapped cold start did not beat heap deserialization\n")
		return 1
	}
	return 0
}

// runCompareServe serves the workload over HTTP in all three serving
// modes, prints the comparison, writes BENCH_serve.json, and fails when
// any mode's served results diverge from offline AlignBatch — or, on the
// full workload, when the coalesced mode's sustained throughput is below
// bench.ServeSpeedupFloor over the per-request-session baseline, its p99
// at the shared offered rate is worse than the saturated baseline's, or
// the overloaded baseline failed to shed with 429 + Retry-After. The
// -quick variant gates hash identity only: its rate phases are too short
// to be stable.
func runCompareServe(quick bool) int {
	cmp, err := bench.CompareServe(quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-serve: %v\n", err)
		return 1
	}
	fmt.Println(cmp)
	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-serve: %v\n", err)
		return 1
	}
	if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: compare-serve: %v\n", err)
		return 1
	}
	fmt.Println("wrote BENCH_serve.json")
	if !cmp.HashOK {
		fmt.Fprintf(os.Stderr, "genax-bench: served results diverge from offline AlignBatch\n")
		return 1
	}
	if quick {
		return 0
	}
	if !cmp.CapacityGate {
		fmt.Fprintf(os.Stderr, "genax-bench: coalesced capacity %.2fx vs sessions is below the %.2fx floor\n",
			cmp.SpeedupVsSession, bench.ServeSpeedupFloor)
		return 1
	}
	if !cmp.P99Gate {
		fmt.Fprintf(os.Stderr, "genax-bench: coalesced p99 is worse than the saturated per-session baseline\n")
		return 1
	}
	if !cmp.ShedGate {
		fmt.Fprintf(os.Stderr, "genax-bench: overloaded baseline did not shed with 429 + Retry-After\n")
		return 1
	}
	return 0
}

// runChecks executes the post-experiment measurements (-stages, -allocbudget).
func runChecks(spec bench.WorkloadSpec, budget float64, stages bool) int {
	if stages {
		br, err := bench.Stages(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "genax-bench: stages: %v\n", err)
			return 1
		}
		fmt.Println(br)
	}
	return checkAllocBudget(spec, budget)
}

// checkAllocBudget runs the steady-state allocation measurement when a
// budget is set, printing the result and failing the process on overrun.
func checkAllocBudget(spec bench.WorkloadSpec, budget float64) int {
	if budget <= 0 {
		return 0
	}
	res, err := bench.AllocsPerRead(spec, budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genax-bench: allocbudget: %v\n", err)
		return 1
	}
	fmt.Println(res)
	if res.Exceeded() {
		fmt.Fprintf(os.Stderr, "genax-bench: allocation budget exceeded\n")
		return 1
	}
	return 0
}
