// Package genax is a from-scratch Go reproduction of "GenAx: A Genome
// Sequencing Accelerator" (ISCA 2018): the Silla string-independent
// Levenshtein automaton, the SillaX edit/scoring/traceback machines, the
// k-mer seeding accelerator, and the software baselines they are evaluated
// against. The implementation lives under internal/; see README.md for the
// package map, DESIGN.md for the architecture, and EXPERIMENTS.md for the
// paper-versus-measured results. The root package exists to host the
// repository-level benchmark suite (bench_test.go).
package genax
